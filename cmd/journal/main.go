// Command journal inspects and replays the run journal written by
// rabidd -journal (internal/journal): an append-only JSONL file recording,
// for every completed async job, the verbatim request, the content key,
// the run's deterministic event stream, and the response digest.
//
// Usage:
//
//	journal -file runs.jsonl list
//	journal -file runs.jsonl show <job-id>
//	journal -file runs.jsonl replay [-workers N] [job-id ...]
//
// list prints one line per recorded run. show dumps a single entry,
// request body included. replay re-executes recorded runs through the
// exact service code path (server.ExecutePlan) and verifies that the
// recomputed content key, response digest, and — for entries that ran the
// pipeline — event-stream digest all match what the journal recorded;
// with no ids it replays every entry. Any mismatch exits 1: the journal is
// a replayable record precisely because RABID runs are bit-deterministic,
// so a divergence means the recorded run is no longer reproducible.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "journal:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: journal -file runs.jsonl {list | show <job-id> | replay [-workers N] [job-id ...]}")
}

func run() error {
	file := flag.String("file", "", "journal file to read (required)")
	workers := flag.Int("workers", 0, "replay worker pool bound (0 = GOMAXPROCS; never changes results)")
	flag.Parse()
	if *file == "" || flag.NArg() < 1 {
		return usage()
	}
	entries, err := journal.ReadFile(*file)
	if err != nil {
		return err
	}
	args := flag.Args()
	switch args[0] {
	case "list":
		return list(entries)
	case "show":
		if len(args) != 2 {
			return usage()
		}
		return show(entries, args[1])
	case "replay":
		return replay(entries, args[1:], *workers)
	}
	return usage()
}

// stamp renders an entry's record time; the journal stores wall-clock
// milliseconds stamped by the server.
func stamp(e journal.Entry) string {
	return time.UnixMilli(e.UnixMs).UTC().Format(time.RFC3339)
}

// short abbreviates a digest/key for the listing.
func short(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

func list(entries []journal.Entry) error {
	if len(entries) == 0 {
		fmt.Println("journal is empty")
		return nil
	}
	fmt.Printf("%-32s  %-20s  %-4s  %-5s  %-12s  %6s  %s\n",
		"ID", "TIME", "KIND", "CACHE", "KEY", "EVENTS", "RESULT-SHA256")
	for _, e := range entries {
		cacheCol := "run"
		if e.CacheHit {
			cacheCol = "hit"
		}
		fmt.Printf("%-32s  %-20s  %-4s  %-5s  %-12s  %6d  %s\n",
			e.ID, stamp(e), e.Kind, cacheCol, short(e.Key), len(e.Events), short(e.ResultSHA256))
	}
	return nil
}

func find(entries []journal.Entry, id string) (journal.Entry, error) {
	for _, e := range entries {
		if e.ID == id {
			return e, nil
		}
	}
	return journal.Entry{}, fmt.Errorf("no entry with id %q", id)
}

func show(entries []journal.Entry, id string) error {
	e, err := find(entries, id)
	if err != nil {
		return err
	}
	fmt.Printf("id:            %s\n", e.ID)
	fmt.Printf("request id:    %s\n", e.RequestID)
	fmt.Printf("time:          %s\n", stamp(e))
	fmt.Printf("kind:          %s\n", e.Kind)
	fmt.Printf("key:           %s\n", e.Key)
	fmt.Printf("cache hit:     %v\n", e.CacheHit)
	fmt.Printf("events:        %d\n", len(e.Events))
	if e.EventsSHA256 != "" {
		fmt.Printf("events sha256: %s\n", e.EventsSHA256)
	}
	fmt.Printf("result sha256: %s\n", e.ResultSHA256)
	var pretty map[string]any
	if err := json.Unmarshal(e.Request, &pretty); err == nil {
		b, _ := json.MarshalIndent(pretty, "", "  ")
		fmt.Printf("request:\n%s\n", b)
	} else {
		fmt.Printf("request (raw):\n%s\n", e.Request)
	}
	return nil
}

// replay re-runs the selected entries and verifies the recorded digests.
func replay(entries []journal.Entry, ids []string, workers int) error {
	selected := entries
	if len(ids) > 0 {
		selected = selected[:0:0]
		for _, id := range ids {
			e, err := find(entries, id)
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("nothing to replay: journal is empty")
	}
	failures := 0
	for _, e := range selected {
		if err := replayOne(e, workers); err != nil {
			failures++
			fmt.Printf("FAIL %s: %v\n", e.ID, err)
		} else {
			fmt.Printf("ok   %s  key+result%s verified\n", e.ID, eventsSuffix(e))
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d replays diverged from the journal", failures, len(selected))
	}
	fmt.Printf("replayed %d run(s), all digests match\n", len(selected))
	return nil
}

func eventsSuffix(e journal.Entry) string {
	if e.EventsSHA256 != "" {
		return "+events"
	}
	return ""
}

func replayOne(e journal.Entry, workers int) error {
	if e.Kind != "plan" {
		return fmt.Errorf("kind %q is not replayable", e.Kind)
	}
	var stream bytes.Buffer
	key, body, err := server.ExecutePlan(context.Background(), e.Request, workers, obs.NewJSONLines(&stream))
	if err != nil {
		return err
	}
	if key != e.Key {
		return fmt.Errorf("content key diverged: recorded %s, replayed %s", short(e.Key), short(key))
	}
	if got := journal.Digest(body); got != e.ResultSHA256 {
		return fmt.Errorf("result digest diverged: recorded %s, replayed %s", short(e.ResultSHA256), short(got))
	}
	if e.EventsSHA256 != "" {
		if got := journal.Digest(stream.Bytes()); got != e.EventsSHA256 {
			return fmt.Errorf("event-stream digest diverged: recorded %s, replayed %s", short(e.EventsSHA256), short(got))
		}
	}
	return nil
}
