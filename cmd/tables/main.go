// Command tables regenerates the paper's experimental tables.
//
// Usage:
//
//	tables            # all of Tables I-VI (several minutes)
//	tables -table 2   # one table
//
// Progress is logged to stderr; tables print to stdout.
//
// Telemetry and profiling:
//
//	tables -table 2 -metrics m.json     # aggregated metrics across all runs
//	tables -table 2 -summary            # human-readable metrics summary
//	tables -table 2 -cpuprofile cpu.pb  # pprof CPU profile
//	tables -table 2 -memprofile mem.pb  # pprof heap profile (written at exit)
//	tables -table 2 -trace trace.out    # runtime/trace execution trace
package main

import (
	"flag"
	"fmt"
	"os"

	rabid "repro"
	"repro/internal/exp"
)

var titles = map[int]string{
	1: "Table I: test circuit statistics and parameters",
	2: "Table II: stage-by-stage results (CBL circuits per stage; random circuits final)",
	3: "Table III: varying the number of available buffer sites",
	4: "Table IV: varying grid sizes for three CBL benchmarks",
	5: "Table V: comparison of RABID to BBP/FR",
	6: "Table VI: planning-backend comparison (rabid / rabid+lib / mcf; coarse tiling)",
}

func main() {
	var (
		table      = flag.Int("table", 0, "table number 1-6 (0 = all; 6 is this reproduction's backend comparison)")
		workers    = flag.Int("workers", 0, "concurrent benchmark runs per table (0 = all CPUs; tables are identical for every value)")
		metricsOut = flag.String("metrics", "", "write metrics aggregated over every RABID run (JSON) to this file")
		summary    = flag.Bool("summary", false, "print a human-readable metrics summary to stderr at the end")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		traceOut   = flag.String("trace", "", "write a runtime/trace execution trace to this file")
	)
	flag.Parse()
	if err := run(*table, *workers, *metricsOut, *summary, *cpuProfile, *memProfile, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(table, workers int, metricsOut string, summary bool, cpuProfile, memProfile, traceOut string) (err error) {
	exp.Workers = workers

	stopProfiles, err := rabid.StartProfiles(cpuProfile, traceOut, memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	// The metrics registry aggregates over the whole suite: the table jobs
	// run concurrently, so their event streams interleave — an aggregating
	// sink is the right tap here (a raw event trace would mix runs).
	var metrics *rabid.MetricsObserver
	if metricsOut != "" || summary {
		metrics = rabid.NewMetricsObserver()
		rabid.SetTableObserver(metrics)
		defer rabid.SetTableObserver(nil)
	}

	which := []int{1, 2, 3, 4, 5, 6}
	if table != 0 {
		which = []int{table}
	}
	for _, n := range which {
		t, err := rabid.Table(n, os.Stderr)
		if err != nil {
			return fmt.Errorf("table %d: %w", n, err)
		}
		fmt.Printf("%s\n\n%s\n", titles[n], t.String())
	}

	if metrics != nil && metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := metrics.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", metricsOut)
	}
	if metrics != nil && summary {
		fmt.Fprintln(os.Stderr, "suite telemetry summary:")
		if err := metrics.WriteSummary(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}
