// Command tables regenerates the paper's experimental tables.
//
// Usage:
//
//	tables            # all of Tables I-V (several minutes)
//	tables -table 2   # one table
//
// Progress is logged to stderr; tables print to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	rabid "repro"
	"repro/internal/exp"
)

var titles = map[int]string{
	1: "Table I: test circuit statistics and parameters",
	2: "Table II: stage-by-stage results (CBL circuits per stage; random circuits final)",
	3: "Table III: varying the number of available buffer sites",
	4: "Table IV: varying grid sizes for three CBL benchmarks",
	5: "Table V: comparison of RABID to BBP/FR",
}

func main() {
	var (
		table   = flag.Int("table", 0, "table number 1-5 (0 = all)")
		workers = flag.Int("workers", 0, "concurrent benchmark runs per table (0 = all CPUs; tables are identical for every value)")
	)
	flag.Parse()
	exp.Workers = *workers
	which := []int{1, 2, 3, 4, 5}
	if *table != 0 {
		which = []int{*table}
	}
	for _, n := range which {
		t, err := rabid.Table(n, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: table %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n\n%s\n", titles[n], t.String())
	}
}
