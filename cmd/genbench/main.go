// Command genbench emits a benchmark circuit as JSON, for inspection or
// for feeding back into `rabid -circuit`.
//
// Usage:
//
//	genbench -bench apte > apte.json
//	genbench -bench playout -sites 6250 -o playout_med.json
//	genbench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	rabid "repro"
)

func main() {
	var (
		bench = flag.String("bench", "", "suite benchmark name")
		out   = flag.String("o", "", "output file (default stdout)")
		grid  = flag.String("grid", "", "override tiling as WxH")
		sites = flag.Int("sites", 0, "override the buffer-site budget")
		seed  = flag.Int64("seed", 0, "override the generation seed")
		list  = flag.Bool("list", false, "list the available benchmarks and exit")
	)
	flag.Parse()
	if *list {
		for _, s := range rabid.Suite() {
			fmt.Printf("%-8s cells=%-3d nets=%-4d pads=%-3d sinks=%-4d grid=%dx%d L=%d sites=%d\n",
				s.Name, s.Cells, s.Nets, s.Pads, s.Sinks, s.GridW, s.GridH, s.L, s.Sites)
		}
		return
	}
	if err := run(*bench, *out, *grid, *sites, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "genbench:", err)
		os.Exit(1)
	}
}

func run(bench, out, grid string, sites int, seed int64) error {
	if bench == "" {
		return fmt.Errorf("-bench is required (or -list)")
	}
	opt := rabid.GenOptions{Sites: sites, Seed: seed}
	if grid != "" {
		if _, err := fmt.Sscanf(grid, "%dx%d", &opt.GridW, &opt.GridH); err != nil {
			return fmt.Errorf("bad -grid %q (want WxH): %v", grid, err)
		}
	}
	c, err := rabid.GenerateBenchmark(bench, opt)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return c.WriteJSON(w)
}
